package switchsim

// SchedKind selects the egress scheduling discipline of a port.
type SchedKind int

const (
	// SchedFIFO serves classes in round-robin by packet arrival — used
	// when ports have a single class.
	SchedFIFO SchedKind = iota
	// SchedDRR is deficit round robin across classes (fair scheduling,
	// §6.2 "performance isolation" setup).
	SchedDRR
	// SchedSP is strict priority: class 0 first (§6.2 "buffer choking"
	// setup).
	SchedSP
)

func (k SchedKind) String() string {
	switch k {
	case SchedDRR:
		return "DRR"
	case SchedSP:
		return "SP"
	default:
		return "FIFO"
	}
}

// scheduler picks the next class to serve on a port. Implementations are
// per-port (they hold rotation/deficit state).
type scheduler interface {
	// next returns the class index to dequeue from, or -1 when every
	// class is empty.
	next(classes []*classQueue) int
}

func newScheduler(kind SchedKind, classes, quantum int) scheduler {
	switch kind {
	case SchedDRR:
		if quantum <= 0 {
			quantum = 2 * 1514
		}
		return &drrSched{quantum: quantum, deficit: make([]int, classes)}
	case SchedSP:
		return spSched{}
	default:
		return &rrSched{}
	}
}

// rrSched serves non-empty classes in simple round-robin.
type rrSched struct{ cur int }

func (s *rrSched) next(classes []*classQueue) int {
	n := len(classes)
	for i := 0; i < n; i++ {
		c := (s.cur + i) % n
		if classes[c].meta.len() > 0 {
			s.cur = (c + 1) % n
			return c
		}
	}
	return -1
}

// spSched serves the lowest-numbered (highest-priority) backlogged class.
type spSched struct{}

func (spSched) next(classes []*classQueue) int {
	for c, q := range classes {
		if q.meta.len() > 0 {
			return c
		}
	}
	return -1
}

// drrSched is deficit round robin: on each visit a backlogged class
// receives `quantum` bytes of credit and is served while the credit
// covers its head packet; the rotor then moves on.
type drrSched struct {
	quantum int
	cur     int
	deficit []int
	inVisit bool // the current class received its quantum this visit
}

func (s *drrSched) next(classes []*classQueue) int {
	n := len(classes)
	backlogged := false
	for _, q := range classes {
		if q.meta.len() > 0 {
			backlogged = true
			break
		}
	}
	if !backlogged {
		s.inVisit = false
		return -1
	}
	// With quantum >= MTU, a visit's credit always covers the head
	// packet and one lap suffices. A tiny quantum needs several laps to
	// accumulate credit; bound the scan accordingly.
	maxIter := n * (2 + pktMTU/s.quantum)
	for i := 0; i < maxIter; i++ {
		q := classes[s.cur]
		if q.meta.len() == 0 {
			s.deficit[s.cur] = 0
			s.inVisit = false
			s.cur = (s.cur + 1) % n
			continue
		}
		if !s.inVisit {
			s.deficit[s.cur] += s.quantum
			s.inVisit = true
		}
		if head := q.meta.peek().Size; s.deficit[s.cur] >= head {
			s.deficit[s.cur] -= head
			return s.cur
		}
		// Credit exhausted: end the visit and rotate.
		s.inVisit = false
		s.cur = (s.cur + 1) % n
	}
	// Unreachable given the iteration bound; fall back to any
	// backlogged class so forwarding never stalls.
	for i := 0; i < n; i++ {
		c := (s.cur + i) % n
		if classes[c].meta.len() > 0 {
			return c
		}
	}
	return -1
}

// pktMTU mirrors pkt.MTU without importing the package here.
const pktMTU = 1500
