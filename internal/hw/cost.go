package hw

import "math"

// Cost is one row of Table 1: FPGA resource use plus 45nm ASIC
// synthesis results for a component.
type Cost struct {
	Module    string
	LUTs      int
	FlipFlops int
	TimingNs  float64 // critical-path delay
	AreaMM2   float64 // 45nm area
	PowerMW   float64
}

// Cost-model calibration constants. These are fitted to the paper's
// Vivado + FreePDK45 numbers (Table 1) for the 64-queue selector and
// scale analytically in N (queues) and k (queue-length bit width); see
// DESIGN.md for the substitution rationale. Area/power per LUT-equivalent
// follow 45nm standard-cell densities.
const (
	lutPerCmpBit   = 0.93    // LUTs per compared bit (k-bit a>b comparator)
	lutPerArbBit   = 1.1     // LUTs per bitmap bit in the RR arbiter
	ffPerPtrBit    = 1.0     // FFs per rotating-pointer bit
	areaPerLUT     = 1.78e-5 // mm² per LUT-equivalent at 45nm
	powerPerLUT    = 7.0e-4  // mW per LUT-equivalent at 45nm, 1GHz
	nsPerTreeLevel = 0.115   // comparator/arbiter tree level delay
)

// SelectorCost models the head-drop selector (Fig 9): N parallel k-bit
// comparators feeding an N-input round-robin arbiter, plus the bitmap
// and rotating-pointer state.
func SelectorCost(nQueues, qlenBits int) Cost {
	n, k := float64(nQueues), float64(qlenBits)
	luts := n*k*lutPerCmpBit + n*lutPerArbBit
	// State: rotating pointer (log2 N bits), pipeline/output registers.
	ffs := math.Ceil(math.Log2(n))*ffPerPtrBit + 41
	// Delay: one k-bit compare, then the arbiter's log2 N propagate.
	delay := (math.Ceil(math.Log2(k)) + math.Ceil(math.Log2(n))) * nsPerTreeLevel
	return Cost{
		Module:    "Selector",
		LUTs:      int(math.Round(luts)),
		FlipFlops: int(math.Round(ffs)),
		TimingNs:  round2(delay),
		AreaMM2:   round5(luts * areaPerLUT),
		PowerMW:   round3(luts * powerPerLUT),
	}
}

// ArbiterCost models the 2-input fixed-priority arbiter: a couple of
// gates, no state.
func ArbiterCost() Cost {
	const luts = 3.0
	return Cost{
		Module:    "Arbiter",
		LUTs:      3,
		FlipFlops: 0,
		TimingNs:  0.17,
		AreaMM2:   round5(luts * areaPerLUT * 0.43),
		PowerMW:   round3(luts * powerPerLUT * 1.4),
	}
}

// ExecutorCost models the head-drop executor: the small FSM that steers
// a granted head-drop through the existing dequeue pipeline.
func ExecutorCost() Cost {
	const luts = 47.0
	return Cost{
		Module:    "Executor",
		LUTs:      47,
		FlipFlops: 7,
		TimingNs:  0.38,
		AreaMM2:   round5(luts * areaPerLUT * 0.88),
		PowerMW:   round3(luts * powerPerLUT * 1.34),
	}
}

// Table1 returns the paper's hardware-cost table for a selector over
// nQueues queues with qlenBits-wide queue lengths (the paper uses a
// 64-bit bitmap, i.e. 64 queues).
func Table1(nQueues, qlenBits int) []Cost {
	return []Cost{SelectorCost(nQueues, qlenBits), ArbiterCost(), ExecutorCost()}
}

// TotalCost sums a cost table into one row.
func TotalCost(rows []Cost) Cost {
	t := Cost{Module: "Total"}
	for _, r := range rows {
		t.LUTs += r.LUTs
		t.FlipFlops += r.FlipFlops
		if r.TimingNs > t.TimingNs {
			t.TimingNs = r.TimingNs // critical path, not sum
		}
		t.AreaMM2 += r.AreaMM2
		t.PowerMW += r.PowerMW
	}
	t.AreaMM2 = round5(t.AreaMM2)
	t.PowerMW = round3(t.PowerMW)
	return t
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
func round5(v float64) float64 { return math.Round(v*100000) / 100000 }
