// Package hw models the hardware components the Occamy paper builds or
// analyzes: the over-allocation bitmap and round-robin arbiter of the
// head-drop selector (Fig 9), the fixed-priority arbiter, the binary
// comparator-tree Maximum Finder that makes classic Pushout expensive
// (Fig 4), the dequeue pipeline (Fig 10), and an analytic gate-level
// cost model reproducing Table 1.
//
// The functional models here are cycle-faithful in behaviour (what gets
// granted, in what order) and are used directly by the Occamy expulsion
// engine in internal/core; the cost models are analytic, calibrated to
// the paper's Vivado/45nm numbers (see DESIGN.md substitution table).
package hw

import "math/bits"

// Bitmap is a fixed-width bitset indexed by queue number, mirroring the
// over-allocation bitmap in the head-drop selector: bit i is set while
// queue i's length exceeds the DT threshold.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an all-zero bitmap over n queues.
func NewBitmap(n int) *Bitmap {
	if n <= 0 {
		panic("hw: bitmap size must be positive")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Size returns the number of queues tracked.
func (b *Bitmap) Size() int { return b.n }

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic("hw: bitmap index out of range")
	}
}

// Set marks queue i.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks queue i.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Assign sets or clears bit i according to v — the per-cycle comparator
// output in the selector.
func (b *Bitmap) Assign(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Get reports whether queue i is marked.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Any reports whether any queue is marked.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of marked queues.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the first marked index >= from, searching cyclically
// through all n positions. It reports false when the bitmap is empty.
func (b *Bitmap) NextSet(from int) (int, bool) {
	if from < 0 || b.n == 0 {
		return 0, false
	}
	from %= b.n
	// Search [from, n), then wrap to [0, from).
	if i, ok := b.scan(from, b.n); ok {
		return i, true
	}
	return b.scan(0, from)
}

func (b *Bitmap) scan(lo, hi int) (int, bool) {
	for i := lo >> 6; i <= (hi-1)>>6 && i < len(b.words); i++ {
		w := b.words[i]
		if w == 0 {
			continue
		}
		// Mask bits below lo in the first word and >= hi in the last.
		if i == lo>>6 {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		for w != 0 {
			bit := i<<6 + bits.TrailingZeros64(w)
			if bit >= hi {
				break
			}
			return bit, true
		}
	}
	return 0, false
}
