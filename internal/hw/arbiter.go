package hw

// RoundRobinArbiter grants one requester per invocation, rotating a
// priority pointer so that every persistent requester is served in turn.
// It is the component labeled ② in Fig 9: it consumes the over-allocation
// bitmap and emits the head-drop queue index.
type RoundRobinArbiter struct {
	n    int
	next int // index that has priority on the next grant
}

// NewRoundRobinArbiter returns an arbiter over n requesters.
func NewRoundRobinArbiter(n int) *RoundRobinArbiter {
	if n <= 0 {
		panic("hw: arbiter size must be positive")
	}
	return &RoundRobinArbiter{n: n}
}

// Grant returns the next requesting index at or after the rotating
// pointer and advances the pointer past it. It reports false when no
// request bit is set.
func (a *RoundRobinArbiter) Grant(req *Bitmap) (int, bool) {
	if req.Size() != a.n {
		panic("hw: bitmap/arbiter size mismatch")
	}
	i, ok := req.NextSet(a.next)
	if !ok {
		return 0, false
	}
	a.next = (i + 1) % a.n
	return i, true
}

// Peek returns the index Grant would return without advancing the pointer.
func (a *RoundRobinArbiter) Peek(req *Bitmap) (int, bool) {
	return req.NextSet(a.next)
}

// FixedPriorityArbiter resolves the read-bandwidth conflict between the
// output scheduler and the head-drop selector (§4.3): the scheduler
// always wins, so preemption can never delay line-rate forwarding.
type FixedPriorityArbiter struct{}

// Requester identifies who is asking for PD/cell-pointer read bandwidth.
type Requester int

// The two requesters, in fixed priority order.
const (
	ReqScheduler Requester = iota // output scheduler: always wins
	ReqHeadDrop                   // head-drop selector: only when idle
	reqNone
)

// Arbitrate returns which requester is granted this cycle.
func (FixedPriorityArbiter) Arbitrate(schedulerWants, headDropWants bool) (Requester, bool) {
	switch {
	case schedulerWants:
		return ReqScheduler, true
	case headDropWants:
		return ReqHeadDrop, true
	default:
		return reqNone, false
	}
}
