package hw

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(100)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(99)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []int{0, 63, 64, 99} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	b.Assign(63, true)
	b.Assign(0, false)
	if !b.Get(63) || b.Get(0) {
		t.Fatal("Assign failed")
	}
}

func TestBitmapNextSetWraps(t *testing.T) {
	b := NewBitmap(130)
	b.Set(5)
	b.Set(70)
	if i, ok := b.NextSet(0); !ok || i != 5 {
		t.Fatalf("NextSet(0) = %d,%v", i, ok)
	}
	if i, ok := b.NextSet(6); !ok || i != 70 {
		t.Fatalf("NextSet(6) = %d,%v", i, ok)
	}
	if i, ok := b.NextSet(71); !ok || i != 5 {
		t.Fatalf("NextSet(71) should wrap to 5, got %d,%v", i, ok)
	}
	if i, ok := b.NextSet(5); !ok || i != 5 {
		t.Fatalf("NextSet(5) = %d,%v, want 5", i, ok)
	}
	empty := NewBitmap(8)
	if _, ok := empty.NextSet(3); ok {
		t.Fatal("NextSet on empty bitmap reported a bit")
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	b := NewBitmap(8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Set did not panic")
		}
	}()
	b.Set(8)
}

// Property: NextSet always returns a set bit, and over repeated calls
// from the returned index+1 visits every set bit exactly once per lap.
func TestBitmapNextSetVisitsAll(t *testing.T) {
	f := func(idxs []uint8, start uint8) bool {
		b := NewBitmap(256)
		want := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			want[int(i)] = true
		}
		if len(want) == 0 {
			_, ok := b.NextSet(int(start))
			return !ok
		}
		seen := map[int]bool{}
		pos := int(start)
		for range want {
			i, ok := b.NextSet(pos % 256)
			if !ok || !b.Get(i) || seen[i] {
				return false
			}
			seen[i] = true
			pos = i + 1
		}
		return len(seen) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	b := NewBitmap(4)
	b.Set(0)
	b.Set(2)
	b.Set(3)
	a := NewRoundRobinArbiter(4)
	var got []int
	for i := 0; i < 6; i++ {
		g, ok := a.Grant(b)
		if !ok {
			t.Fatal("Grant failed with requests pending")
		}
		got = append(got, g)
	}
	want := []int{0, 2, 3, 0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsCleared(t *testing.T) {
	b := NewBitmap(4)
	b.Set(1)
	b.Set(3)
	a := NewRoundRobinArbiter(4)
	g1, _ := a.Grant(b)
	b.Clear(3) // queue 3 no longer over-allocated
	g2, _ := a.Grant(b)
	if g1 != 1 || g2 != 1 {
		t.Fatalf("grants = %d,%d, want 1,1", g1, g2)
	}
	b.Clear(1)
	if _, ok := a.Grant(b); ok {
		t.Fatal("Grant succeeded on empty bitmap")
	}
}

func TestRoundRobinPeekDoesNotAdvance(t *testing.T) {
	b := NewBitmap(4)
	b.Set(1)
	b.Set(2)
	a := NewRoundRobinArbiter(4)
	p1, _ := a.Peek(b)
	p2, _ := a.Peek(b)
	if p1 != p2 {
		t.Fatalf("Peek advanced: %d then %d", p1, p2)
	}
	g, _ := a.Grant(b)
	if g != p1 {
		t.Fatalf("Grant %d != Peek %d", g, p1)
	}
}

func TestFixedPriorityArbiter(t *testing.T) {
	var a FixedPriorityArbiter
	if r, ok := a.Arbitrate(true, true); !ok || r != ReqScheduler {
		t.Fatal("scheduler did not win contended cycle")
	}
	if r, ok := a.Arbitrate(false, true); !ok || r != ReqHeadDrop {
		t.Fatal("head-drop not granted on idle cycle")
	}
	if r, ok := a.Arbitrate(true, false); !ok || r != ReqScheduler {
		t.Fatal("scheduler not granted alone")
	}
	if _, ok := a.Arbitrate(false, false); ok {
		t.Fatal("grant with no requesters")
	}
}

func TestMaxFinderFindsMax(t *testing.T) {
	m := NewMaxFinder(8, 20)
	vals := []int{3, 9, 1, 9, 0, 2, 8, 4}
	// Tree tie-break: the mux picks b on a==b, so the later index 3 wins.
	if got := m.Find(vals); got != 3 {
		t.Fatalf("Find = %d, want 3 (later tie winner)", got)
	}
	vals[6] = 99
	if got := m.Find(vals); got != 6 {
		t.Fatalf("Find = %d, want 6", got)
	}
}

// Property: the comparator tree always returns an index whose value is
// the true maximum.
func TestMaxFinderCorrect(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		max := 0
		for i, v := range raw {
			vals[i] = int(v)
			if int(v) > max {
				max = int(v)
			}
		}
		m := NewMaxFinder(len(vals), 16)
		return vals[m.Find(vals)] == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFinderCostScaling(t *testing.T) {
	m := NewMaxFinder(64, 20)
	if m.Levels() != 6 {
		t.Fatalf("Levels = %d, want 6", m.Levels())
	}
	if m.Comparators() != 63 {
		t.Fatalf("Comparators = %d, want 63", m.Comparators())
	}
	// §2.2 Difficulty 3: the MF cannot settle in a 1GHz cycle at scale.
	if m.MeetsCycleTime(1.0) {
		t.Fatal("64-input MF met a 1GHz cycle; paper's argument requires it not to")
	}
	// A tiny MF does fit, confirming the delay model scales.
	if !NewMaxFinder(2, 4).MeetsCycleTime(1.0) {
		t.Fatal("trivial MF failed 1GHz cycle")
	}
}

func TestDequeueCycles(t *testing.T) {
	cfg := PipelineConfig{Sublists: 1}
	if got := DequeueCycles(cfg, 1, true); got != 3 {
		t.Fatalf("1 cell = %d cycles, want 3", got)
	}
	if got := DequeueCycles(cfg, 4, true); got != 6 {
		t.Fatalf("4 cells = %d cycles, want 6", got)
	}
	// Parallel sub-lists speed up pointer streaming (§3.2 opportunity 3).
	cfg4 := PipelineConfig{Sublists: 4}
	if got := DequeueCycles(cfg4, 4, true); got != 3 {
		t.Fatalf("4 cells/4 sublists = %d cycles, want 3", got)
	}
	// Head-drop occupancy equals dequeue occupancy (same PD/ptr path).
	if DequeueCycles(cfg, 4, false) != DequeueCycles(cfg, 4, true) {
		t.Fatal("head-drop pipeline occupancy diverged from dequeue")
	}
}

func TestHeadDropNeverReadsCellData(t *testing.T) {
	for cells := 1; cells <= 64; cells *= 2 {
		if HeadDropCellDataReads(cells) != 0 {
			t.Fatalf("head-drop read cell data for %d cells", cells)
		}
	}
}

func TestExpulsionRate(t *testing.T) {
	cfg := PipelineConfig{Sublists: 4}
	// ~1500B packet = 8 cells of 200B: 2+2 = 4 cycles at 1GHz = 250Mpps.
	r := ExpulsionRate(cfg, 1.0, 8)
	if r < 2e8 || r > 3e8 {
		t.Fatalf("ExpulsionRate = %v, want ~2.5e8", r)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	rows := Table1(64, 20)
	sel, arb, exe := rows[0], rows[1], rows[2]

	// Paper values: selector 1262 LUTs / 47 FFs / 1.49ns / 0.023mm² /
	// 0.895mW. The analytic model must land within 15%.
	within := func(got, want, tol float64) bool {
		return got >= want*(1-tol) && got <= want*(1+tol)
	}
	if !within(float64(sel.LUTs), 1262, 0.15) {
		t.Errorf("selector LUTs = %d, want ~1262", sel.LUTs)
	}
	if !within(float64(sel.FlipFlops), 47, 0.15) {
		t.Errorf("selector FFs = %d, want ~47", sel.FlipFlops)
	}
	if !within(sel.TimingNs, 1.49, 0.15) {
		t.Errorf("selector timing = %v, want ~1.49", sel.TimingNs)
	}
	if !within(sel.AreaMM2, 0.023, 0.15) {
		t.Errorf("selector area = %v, want ~0.023", sel.AreaMM2)
	}
	if !within(sel.PowerMW, 0.895, 0.20) {
		t.Errorf("selector power = %v, want ~0.895", sel.PowerMW)
	}

	// Relative shape: the selector dominates everything.
	if sel.LUTs < 10*arb.LUTs || sel.LUTs < 10*exe.LUTs {
		t.Error("selector does not dominate LUT cost")
	}
	// Totals stay within the paper's headline: <0.03mm², ~1mW.
	tot := TotalCost(rows)
	if tot.AreaMM2 >= 0.03 {
		t.Errorf("total area = %v, want < 0.03", tot.AreaMM2)
	}
	if tot.PowerMW >= 1.2 {
		t.Errorf("total power = %v, want ~1", tot.PowerMW)
	}
	// Selector settles fast enough to expel a packet every 2 cycles @1GHz.
	if sel.TimingNs >= 2.0 {
		t.Errorf("selector timing %vns too slow for 2-cycle expulsion", sel.TimingNs)
	}
}

func TestSelectorCostScalesWithQueues(t *testing.T) {
	small := SelectorCost(8, 20)
	big := SelectorCost(512, 20)
	if big.LUTs <= small.LUTs || big.TimingNs <= small.TimingNs {
		t.Fatal("selector cost does not grow with queue count")
	}
}
