package hw

import "math"

// MaxFinder is the binary comparator tree of Fig 4: the circuit classic
// Pushout needs to track the longest queue in real time. The functional
// model reproduces the tree's exact tie-breaking (an a>b multiplexer
// selects b on ties, so the *later* input wins equal comparisons), and
// the cost model reproduces why the paper rejects it: O(k·N) gates are
// fine, but O(log₂k · log₂N) delay cannot keep up with per-cycle queue
// length changes.
type MaxFinder struct {
	n int
	k int // bit width of each compared value
}

// NewMaxFinder returns a comparator tree over n inputs of k bits each.
func NewMaxFinder(n, k int) *MaxFinder {
	if n <= 0 || k <= 0 {
		panic("hw: max finder needs positive n and k")
	}
	return &MaxFinder{n: n, k: k}
}

// Find returns the index of the maximum value, evaluated exactly as the
// binary comparator tree would: pairwise a>b muxes, later index on ties.
func (m *MaxFinder) Find(values []int) int {
	if len(values) != m.n {
		panic("hw: max finder input size mismatch")
	}
	type cand struct{ idx, v int }
	level := make([]cand, len(values))
	for i, v := range values {
		level[i] = cand{i, v}
	}
	for len(level) > 1 {
		next := make([]cand, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			a, b := level[i], level[i+1]
			if a.v > b.v { // mux selects a only on strict greater
				next = append(next, a)
			} else {
				next = append(next, b)
			}
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0].idx
}

// Levels returns the comparator-tree depth ⌈log₂N⌉.
func (m *MaxFinder) Levels() int {
	return int(math.Ceil(math.Log2(float64(m.n))))
}

// Comparators returns the number of CMP+MUX nodes (N−1).
func (m *MaxFinder) Comparators() int { return m.n - 1 }

// Gates estimates total gate count, O(k·N) as stated in §2.2.
func (m *MaxFinder) Gates() int {
	// Each CMP+MUX node is ~6 gates per bit (ripple comparator cell plus
	// a 2:1 mux bit).
	return m.Comparators() * m.k * 6
}

// DelayNs estimates the combinational delay in nanoseconds at 45nm:
// each tree level costs a k-bit compare, itself a log₂k-depth structure.
// This is the O(log₂k × log₂N) term that rules the circuit out for
// per-cycle use in a multi-GHz traffic manager.
func (m *MaxFinder) DelayNs() float64 {
	perStage := 0.08 // ns per logic level at 45nm (typical FO4-ish)
	cmpDepth := math.Ceil(math.Log2(float64(m.k))) + 1
	return float64(m.Levels()) * cmpDepth * perStage
}

// MeetsCycleTime reports whether the finder settles within one clock
// cycle at the given frequency (GHz). Table/figure discussions assume a
// 1GHz traffic manager.
func (m *MaxFinder) MeetsCycleTime(ghz float64) bool {
	return m.DelayNs() <= 1.0/ghz
}
