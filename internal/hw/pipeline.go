package hw

// DequeueOp enumerates the five pipeline operations of Fig 10.
type DequeueOp int

// The dequeue pipeline operations, in issue order.
const (
	OpReadPD      DequeueOp = iota // ① read PD from PD memory
	OpDequeuePD                    // ② advance the PD linked-list head
	OpReadCellPtr                  // ③ read a cell pointer
	OpFreeCell                     // ④ return the pointer to the free list
	OpReadCell                     // ⑤ read cell data (skipped on head-drop)
)

// PipelineConfig describes the dequeue datapath.
type PipelineConfig struct {
	// Sublists is the number of parallel cell-pointer sub-lists (§2.1);
	// that many cell pointers can be read per cycle.
	Sublists int
}

// DequeueCycles returns how many traffic-manager cycles the Fig 10
// pipeline needs to retire one packet occupying `cells` cells. The PD
// read/dequeue take one cycle each; cell-pointer reads then stream at
// Sublists per cycle, with free-cell and (for transmission) data reads
// overlapped in the pipeline. Head-drops skip operation ⑤ but, because
// the three memories are accessed in parallel, the *occupancy* of the
// PD/pointer stages is what bounds throughput — which is why the paper
// charges head-drop the same pointer bandwidth as a normal dequeue.
func DequeueCycles(cfg PipelineConfig, cells int, readData bool) int {
	if cells < 1 {
		cells = 1
	}
	sub := cfg.Sublists
	if sub < 1 {
		sub = 1
	}
	ptrCycles := (cells + sub - 1) / sub
	// ① and ② occupy one cycle each; pointer streaming overlaps ④ (and
	// ⑤ when transmitting, on a separate memory port).
	return 2 + ptrCycles
}

// HeadDropCellDataReads returns the number of cell-data reads a head-drop
// performs — always zero; kept as an explicit function so tests document
// the invariant at the hardware-model level too.
func HeadDropCellDataReads(cells int) int { return 0 }

// ExpulsionRate returns the packets-per-second the expulsion path can
// sustain at the given clock (GHz) for packets of `cells` cells, when the
// output scheduler leaves the PD/pointer memories idle.
func ExpulsionRate(cfg PipelineConfig, ghz float64, cells int) float64 {
	cyc := DequeueCycles(cfg, cells, false)
	return ghz * 1e9 / float64(cyc)
}
