// Package workload generates the traffic the paper evaluates with:
// web-search-distributed background flows arriving as a Poisson process,
// incast query traffic, long-lived flows and microbursts for the testbed
// scenarios, and the AI patterns (all-to-all, all-reduce over a double
// binary tree).
package workload

import "occamy/internal/sim"

// CDF is a piecewise-linear flow-size distribution: points of
// (size, cumulative probability), non-decreasing in both coordinates,
// ending at probability 1.
type CDF struct {
	points []CDFPoint
}

// CDFPoint is one knot of the distribution.
type CDFPoint struct {
	Size float64 // bytes
	Cum  float64
}

// NewCDF validates and builds a distribution.
func NewCDF(points []CDFPoint) *CDF {
	if len(points) < 2 {
		panic("workload: CDF needs at least two points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Size < points[i-1].Size || points[i].Cum < points[i-1].Cum {
			panic("workload: CDF points must be non-decreasing")
		}
	}
	if points[len(points)-1].Cum != 1 {
		panic("workload: CDF must end at probability 1")
	}
	return &CDF{points: points}
}

// WebSearch is the DCTCP-paper web-search flow-size distribution used
// throughout the paper's evaluation (§6.2, §6.4): mostly small flows
// with a heavy tail to 30MB.
func WebSearch() *CDF {
	return NewCDF([]CDFPoint{
		{0, 0},
		{10_000, 0.15},
		{20_000, 0.20},
		{30_000, 0.30},
		{50_000, 0.40},
		{80_000, 0.53},
		{200_000, 0.60},
		{1_000_000, 0.70},
		{2_000_000, 0.80},
		{5_000_000, 0.90},
		{10_000_000, 0.97},
		{30_000_000, 1.00},
	})
}

// CacheFollower is the cache-follower flow-size distribution measured in
// Facebook's datacenters (Roy et al., SIGCOMM'15, as redrawn by the ABM
// and Homa evaluations): dominated by sub-MTU object reads with a thin
// tail into the hundreds of kilobytes. Mixed with WebSearch it produces
// the bimodal "mixed load" scenarios the paper does not cover.
func CacheFollower() *CDF {
	return NewCDF([]CDFPoint{
		{0, 0},
		{300, 0.30},
		{600, 0.50},
		{1_000, 0.70},
		{2_000, 0.80},
		{5_000, 0.90},
		{50_000, 0.97},
		{500_000, 1.00},
	})
}

// Uniform returns a degenerate distribution of one fixed size.
func Uniform(size int64) *CDF {
	return NewCDF([]CDFPoint{{float64(size), 0}, {float64(size), 1}})
}

// Sample draws a flow size (>= 1 byte).
func (c *CDF) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	pts := c.points
	// Find the segment containing u and interpolate linearly.
	for i := 1; i < len(pts); i++ {
		if u <= pts[i].Cum {
			lo, hi := pts[i-1], pts[i]
			if hi.Cum == lo.Cum {
				return clamp1(int64(hi.Size))
			}
			frac := (u - lo.Cum) / (hi.Cum - lo.Cum)
			return clamp1(int64(lo.Size + frac*(hi.Size-lo.Size)))
		}
	}
	return clamp1(int64(pts[len(pts)-1].Size))
}

// Mean returns the distribution's expected size in bytes.
func (c *CDF) Mean() float64 {
	pts := c.points
	total := 0.0
	for i := 1; i < len(pts); i++ {
		p := pts[i].Cum - pts[i-1].Cum
		total += p * (pts[i].Size + pts[i-1].Size) / 2
	}
	return total
}

func clamp1(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}
