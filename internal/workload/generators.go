package workload

import (
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/transport"
)

// IdealFCT returns the unloaded completion time of a transfer: one-way
// base latency plus serialization at the bottleneck, including header
// overhead per MSS.
func IdealFCT(size int64, bottleneckBps float64, oneWayBase sim.Duration) sim.Duration {
	segs := (size + int64(pkt.MSS) - 1) / int64(pkt.MSS)
	wire := size + segs*int64(pkt.HeaderBytes)
	ser := sim.Duration(float64(wire*8) / bottleneckBps * float64(sim.Second))
	return oneWayBase + ser
}

// Background generates 1-to-1 flows: Poisson arrivals, random distinct
// (src, dst) pairs among Hosts, sizes from Dist, targeting an average
// per-host load fraction of the access link.
type Background struct {
	Net   *netsim.Network
	Hosts []pkt.NodeID
	// Load is the target fraction of each host's LinkBps consumed on
	// average (e.g. 0.5 for the DPDK experiments, 0.9 for §6.4).
	Load    float64
	LinkBps float64
	Dist    *CDF
	// Flow options applied to every generated flow.
	Priority int
	ECN      bool
	NewCC    func(mss, segs int) transport.CC
	Opts     transport.Options
	// Collector receives (size, fct, ideal) for every completed flow.
	Collector *metrics.Collector
	// OneWayBase is used for the ideal-FCT slowdown denominator.
	OneWayBase sim.Duration

	rand    *sim.Rand
	stopped bool
	started int64
}

// Start begins generating flows at time from, stopping new arrivals at
// time until (in-flight flows still finish).
func (b *Background) Start(from, until sim.Time) {
	if b.Load <= 0 || len(b.Hosts) < 2 {
		panic("workload: Background needs Load > 0 and >= 2 hosts")
	}
	b.rand = b.Net.Rand.Fork()
	// Aggregate flow arrival rate: load × aggregate access bandwidth /
	// mean flow size (wire bytes ≈ payload for sizing purposes).
	mean := b.Dist.Mean()
	lambda := b.Load * b.LinkBps * float64(len(b.Hosts)) / 8 / mean // flows/sec
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until || b.stopped {
			return
		}
		b.Net.Eng.At(at, func() {
			b.launch()
			gap := sim.Duration(b.rand.Exp(1/lambda) * float64(sim.Second))
			if gap < 1 {
				gap = 1
			}
			schedule(at + gap)
		})
	}
	schedule(from)
}

// Stop halts new arrivals.
func (b *Background) Stop() { b.stopped = true }

// Started returns the number of flows launched.
func (b *Background) Started() int64 { return b.started }

func (b *Background) launch() {
	src := b.Hosts[b.rand.Intn(len(b.Hosts))]
	dst := src
	for dst == src {
		dst = b.Hosts[b.rand.Intn(len(b.Hosts))]
	}
	size := b.Dist.Sample(b.rand)
	b.started++
	ideal := IdealFCT(size, b.LinkBps, b.OneWayBase)
	b.Net.StartFlow(b.Net.Eng.Now(), src, dst, size, netsim.FlowOptions{
		Priority:  b.Priority,
		ECN:       b.ECN,
		NewCC:     b.NewCC,
		Transport: b.Opts,
		OnComplete: func(fct sim.Duration) {
			if b.Collector != nil {
				b.Collector.Add(size, fct, ideal)
			}
		},
	})
}

// Incast generates query traffic: a client periodically queries Fanout
// servers, each of which responds with QuerySize/Fanout bytes; the query
// completes when every response has fully arrived (QCT).
type Incast struct {
	Net     *netsim.Network
	Client  pkt.NodeID
	Servers []pkt.NodeID
	// RandomClient, when set, picks a different client per query from
	// Servers (excluding it from that query's responders) — the
	// large-scale simulation's query pattern.
	RandomClient bool
	Fanout       int
	// QuerySize is the total response volume per query.
	QuerySize int64
	// QPS is the Poisson query rate; 0 means one query per Interval.
	QPS      float64
	Interval sim.Duration

	Priority int
	ECN      bool
	NewCC    func(mss, segs int) transport.CC
	Opts     transport.Options

	// Collector receives (QuerySize, qct, ideal) per completed query.
	Collector  *metrics.Collector
	LinkBps    float64
	OneWayBase sim.Duration

	// OnQueryDone, if set, also observes each query completion.
	OnQueryDone func(qct sim.Duration)

	rand    *sim.Rand
	stopped bool
	queries int64
	done    int64
	// timeouts across all response flows (RTO counting for the p99 story)
	handles []*netsim.FlowHandle
}

// Start begins issuing queries in [from, until] (inclusive: Start(t, t)
// issues one query). Fanout may exceed the
// server count: servers then carry multiple response flows per query
// (the paper's incast degree 40 across 5 senders).
func (g *Incast) Start(from, until sim.Time) {
	min := 1
	if g.RandomClient {
		min = 2 // the client is excluded from its own responders
	}
	if g.Fanout <= 0 || len(g.Servers) < min {
		panic("workload: Incast needs Fanout > 0 and enough servers")
	}
	g.rand = g.Net.Rand.Fork()
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until || g.stopped {
			return
		}
		g.Net.Eng.At(at, func() {
			g.query()
			var gap sim.Duration
			if g.QPS > 0 {
				gap = sim.Duration(g.rand.Exp(1/g.QPS) * float64(sim.Second))
			} else {
				gap = g.Interval
			}
			if gap < 1 {
				gap = 1
			}
			schedule(at + gap)
		})
	}
	schedule(from)
}

// Stop halts new queries.
func (g *Incast) Stop() { g.stopped = true }

// Queries returns the number issued; Done the number fully answered.
func (g *Incast) Queries() int64 { return g.queries }

// Done returns the number of completed queries.
func (g *Incast) Done() int64 { return g.done }

// Timeouts sums RTO events across all response flows issued so far.
func (g *Incast) Timeouts() int64 {
	var t int64
	for _, h := range g.handles {
		t += h.Sender.Timeouts()
	}
	return t
}

func (g *Incast) query() {
	g.queries++
	start := g.Net.Eng.Now()
	per := g.QuerySize / int64(g.Fanout)
	if per < 1 {
		per = 1
	}
	remaining := g.Fanout
	client := g.Client
	// Pick Fanout distinct servers (excluding a randomly drawn client
	// when in random-client mode).
	perm := g.rand.Perm(len(g.Servers))
	if g.RandomClient {
		client = g.Servers[perm[len(perm)-1]]
		perm = perm[:len(perm)-1]
	}
	ideal := IdealFCT(g.QuerySize, g.LinkBps, g.OneWayBase)
	for i := 0; i < g.Fanout; i++ {
		srv := g.Servers[perm[i%len(perm)]]
		h := g.Net.StartFlow(start, srv, client, per, netsim.FlowOptions{
			Priority:  g.Priority,
			ECN:       g.ECN,
			NewCC:     g.NewCC,
			Transport: g.Opts,
			OnComplete: func(fct sim.Duration) {
				remaining--
				if remaining == 0 {
					qct := g.Net.Eng.Now() - start
					g.done++
					if g.Collector != nil {
						g.Collector.Add(g.QuerySize, qct, ideal)
					}
					if g.OnQueryDone != nil {
						g.OnQueryDone(qct)
					}
				}
			},
		})
		g.handles = append(g.handles, h)
	}
}
