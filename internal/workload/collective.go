package workload

import (
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/transport"
)

// AllToAll generates rounds of the AI all-to-all pattern: every host
// sends FlowSize bytes to every other host. Round starts are spaced so
// the average per-host offered load matches Load.
type AllToAll struct {
	Net      *netsim.Network
	Hosts    []pkt.NodeID
	FlowSize int64
	Load     float64
	LinkBps  float64

	Priority int
	ECN      bool
	NewCC    func(mss, segs int) transport.CC
	Opts     transport.Options

	Collector  *metrics.Collector
	OneWayBase sim.Duration

	stopped bool
	rounds  int64
}

// RoundInterval returns the spacing between round starts that hits the
// target load: each host sends (N−1)·FlowSize bytes per round.
func (a *AllToAll) RoundInterval() sim.Duration {
	perHost := float64(len(a.Hosts)-1) * float64(a.FlowSize) * 8
	return sim.Duration(perHost / (a.Load * a.LinkBps) * float64(sim.Second))
}

// Start launches rounds in [from, until] — until is inclusive:
// Start(t, t) launches exactly one round.
func (a *AllToAll) Start(from, until sim.Time) {
	if a.Load <= 0 || len(a.Hosts) < 2 {
		panic("workload: AllToAll needs Load > 0 and >= 2 hosts")
	}
	interval := a.RoundInterval()
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until || a.stopped {
			return
		}
		a.Net.Eng.At(at, func() {
			a.round()
			schedule(at + interval)
		})
	}
	schedule(from)
}

// Stop halts new rounds.
func (a *AllToAll) Stop() { a.stopped = true }

// Rounds returns the number of rounds launched.
func (a *AllToAll) Rounds() int64 { return a.rounds }

func (a *AllToAll) round() {
	a.rounds++
	now := a.Net.Eng.Now()
	ideal := IdealFCT(a.FlowSize, a.LinkBps, a.OneWayBase)
	for _, src := range a.Hosts {
		for _, dst := range a.Hosts {
			if src == dst {
				continue
			}
			size := a.FlowSize
			a.Net.StartFlow(now, src, dst, size, netsim.FlowOptions{
				Priority:  a.Priority,
				ECN:       a.ECN,
				NewCC:     a.NewCC,
				Transport: a.Opts,
				OnComplete: func(fct sim.Duration) {
					if a.Collector != nil {
						a.Collector.Add(size, fct, ideal)
					}
				},
			})
		}
	}
}

// TreeEdge is a parent-child link in a reduction tree.
type TreeEdge struct {
	Parent, Child int // indices into the host list
}

// DoubleBinaryTree builds the two complementary binary trees of the
// prevailing all-reduce algorithm (Sanders, Speck, Träff): tree A is the
// heap-ordered binary tree over ranks, tree B is the same shape over a
// rotated rank order, so interior nodes of one tree tend to be leaves of
// the other and every rank forwards data in exactly one tree.
func DoubleBinaryTree(n int) (treeA, treeB []TreeEdge) {
	heapEdges := func(rank func(i int) int) []TreeEdge {
		var edges []TreeEdge
		for i := 0; i < n; i++ {
			if l := 2*i + 1; l < n {
				edges = append(edges, TreeEdge{Parent: rank(i), Child: rank(l)})
			}
			if r := 2*i + 2; r < n {
				edges = append(edges, TreeEdge{Parent: rank(i), Child: rank(r)})
			}
		}
		return edges
	}
	treeA = heapEdges(func(i int) int { return i })
	treeB = heapEdges(func(i int) int { return (i + n/2) % n }) // rotated ranks
	return treeA, treeB
}

// AllReduce generates rounds of double-binary-tree all-reduce traffic:
// per round, each tree edge carries one reduce flow (child→parent) and
// one broadcast flow (parent→child), all of identical size (half the
// reduced data goes down each tree).
type AllReduce struct {
	Net      *netsim.Network
	Hosts    []pkt.NodeID
	FlowSize int64
	Load     float64
	LinkBps  float64

	Priority int
	ECN      bool
	NewCC    func(mss, segs int) transport.CC
	Opts     transport.Options

	Collector  *metrics.Collector
	OneWayBase sim.Duration

	stopped bool
	rounds  int64
	edgesA  []TreeEdge
	edgesB  []TreeEdge
}

// RoundInterval spaces rounds to hit the target average load on the
// busiest host (an interior node sends ~2 flows per tree per round).
func (a *AllReduce) RoundInterval() sim.Duration {
	perHost := 4 * float64(a.FlowSize) * 8 // ≈ worst-case sends per round
	return sim.Duration(perHost / (a.Load * a.LinkBps) * float64(sim.Second))
}

// Start launches rounds in [from, until] — until is inclusive:
// Start(t, t) launches exactly one round.
func (a *AllReduce) Start(from, until sim.Time) {
	if a.Load <= 0 || len(a.Hosts) < 2 {
		panic("workload: AllReduce needs Load > 0 and >= 2 hosts")
	}
	a.edgesA, a.edgesB = DoubleBinaryTree(len(a.Hosts))
	interval := a.RoundInterval()
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until || a.stopped {
			return
		}
		a.Net.Eng.At(at, func() {
			a.round()
			schedule(at + interval)
		})
	}
	schedule(from)
}

// Stop halts new rounds.
func (a *AllReduce) Stop() { a.stopped = true }

// Rounds returns the number of rounds launched.
func (a *AllReduce) Rounds() int64 { return a.rounds }

func (a *AllReduce) round() {
	a.rounds++
	now := a.Net.Eng.Now()
	ideal := IdealFCT(a.FlowSize, a.LinkBps, a.OneWayBase)
	launch := func(src, dst pkt.NodeID) {
		if src == dst {
			return
		}
		size := a.FlowSize
		a.Net.StartFlow(now, src, dst, size, netsim.FlowOptions{
			Priority:  a.Priority,
			ECN:       a.ECN,
			NewCC:     a.NewCC,
			Transport: a.Opts,
			OnComplete: func(fct sim.Duration) {
				if a.Collector != nil {
					a.Collector.Add(size, fct, ideal)
				}
			},
		})
	}
	for _, edges := range [][]TreeEdge{a.edgesA, a.edgesB} {
		for _, e := range edges {
			launch(a.Hosts[e.Child], a.Hosts[e.Parent]) // reduce
			launch(a.Hosts[e.Parent], a.Hosts[e.Child]) // broadcast
		}
	}
}
