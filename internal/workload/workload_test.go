package workload

import (
	"math"
	"testing"
	"testing/quick"

	"occamy/internal/bm"
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
)

func TestWebSearchCDFSampling(t *testing.T) {
	cdf := WebSearch()
	r := sim.NewRand(1)
	const n = 100000
	var sum float64
	small := 0
	for i := 0; i < n; i++ {
		s := cdf.Sample(r)
		if s < 1 || s > 30_000_000 {
			t.Fatalf("sample %d out of range", s)
		}
		if s < 100_000 {
			small++
		}
		sum += float64(s)
	}
	// Sample mean must match the analytic mean within 5%.
	mean := sum / n
	want := cdf.Mean()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("sample mean %v vs analytic %v", mean, want)
	}
	// Web-search is mostly small flows: >50% under 100KB.
	if frac := float64(small) / n; frac < 0.5 {
		t.Fatalf("only %v of flows < 100KB", frac)
	}
}

func TestUniformCDF(t *testing.T) {
	cdf := Uniform(64_000)
	r := sim.NewRand(2)
	for i := 0; i < 100; i++ {
		if s := cdf.Sample(r); s != 64_000 {
			t.Fatalf("Uniform sampled %d", s)
		}
	}
	if cdf.Mean() != 64_000 {
		t.Fatalf("Mean = %v", cdf.Mean())
	}
}

func TestCDFValidation(t *testing.T) {
	for _, pts := range [][]CDFPoint{
		{{0, 0}},                // too short
		{{0, 0}, {100, 0.5}},    // does not reach 1
		{{0, 0.5}, {100, 0.25}}, // decreasing cum
		{{100, 0}, {50, 1}},     // decreasing size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCDF(%v) did not panic", pts)
				}
			}()
			NewCDF(pts)
		}()
	}
}

func TestIdealFCT(t *testing.T) {
	// 1 MSS at 10Gbps: 1500B wire = 1.2µs + 10µs base.
	got := IdealFCT(pkt.MSS, 10e9, 10*sim.Microsecond)
	if got < 11*sim.Microsecond || got > 12*sim.Microsecond {
		t.Fatalf("IdealFCT = %v, want ~11.2µs", got)
	}
}

func smallStar(hosts int) *netsim.Network {
	rates := make([]float64, hosts)
	for i := range rates {
		rates[i] = 10e9
	}
	return netsim.SingleSwitch(netsim.SingleSwitchConfig{
		HostRates: rates,
		LinkDelay: 2 * sim.Microsecond,
		Switch: switchsim.Config{
			ClassesPerPort:    1,
			BufferBytes:       500_000,
			Policy:            bm.NewDT(1),
			ECNThresholdBytes: 80_000,
		},
		Seed: 7,
	})
}

func TestBackgroundGeneratorLoad(t *testing.T) {
	net := smallStar(4)
	hosts := []pkt.NodeID{0, 1, 2, 3}
	var col metrics.Collector
	bg := &Background{
		Net: net, Hosts: hosts, Load: 0.3, LinkBps: 10e9,
		Dist: Uniform(100_000), ECN: true,
		Collector: &col, OneWayBase: 4 * sim.Microsecond,
	}
	dur := 20 * sim.Millisecond
	bg.Start(0, dur)
	net.Eng.RunUntil(dur + 50*sim.Millisecond)
	if bg.Started() == 0 {
		t.Fatal("no flows generated")
	}
	// Offered load ≈ 0.3 × 10G × 4 hosts = 12Gbps → 1.5GB/s → in 20ms,
	// 30MB → 300 flows of 100KB. Allow ±40% (Poisson noise, small window).
	if bg.Started() < 180 || bg.Started() > 420 {
		t.Fatalf("started %d flows, want ~300", bg.Started())
	}
	if col.Count() < int(bg.Started())*8/10 {
		t.Fatalf("only %d/%d flows completed", col.Count(), bg.Started())
	}
}

func TestIncastQCT(t *testing.T) {
	net := smallStar(5)
	var col metrics.Collector
	g := &Incast{
		Net: net, Client: 0, Servers: []pkt.NodeID{1, 2, 3, 4},
		Fanout: 4, QuerySize: 400_000, Interval: 10 * sim.Millisecond,
		ECN: true, Collector: &col,
		LinkBps: 10e9, OneWayBase: 4 * sim.Microsecond,
	}
	g.Start(0, 25*sim.Millisecond)
	net.Eng.RunUntil(100 * sim.Millisecond)
	if g.Queries() != 3 {
		t.Fatalf("issued %d queries, want 3", g.Queries())
	}
	if g.Done() != 3 {
		t.Fatalf("completed %d/%d queries", g.Done(), g.Queries())
	}
	// Ideal: 400KB over 10G ≈ 330µs; with incast congestion allow 10x.
	if m := col.MeanFCT(); m < 300*sim.Microsecond || m > 3300*sim.Microsecond {
		t.Fatalf("mean QCT = %v, want ~0.4-3ms", m)
	}
}

func TestIncastFanoutValidation(t *testing.T) {
	net := smallStar(3)
	// Zero fanout is invalid.
	g := &Incast{Net: net, Client: 0, Servers: []pkt.NodeID{1, 2}, Fanout: 0}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero fanout did not panic")
			}
		}()
		g.Start(0, sim.Second)
	}()
	// RandomClient requires at least two hosts in the pool.
	g2 := &Incast{Net: net, Servers: []pkt.NodeID{1}, RandomClient: true, Fanout: 1}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("random client with one server did not panic")
			}
		}()
		g2.Start(0, sim.Second)
	}()
}

// Fanout beyond the server count cycles servers (incast degree 40 over
// 5 senders in Fig 6).
func TestIncastFanoutExceedsServers(t *testing.T) {
	net := smallStar(3)
	var col metrics.Collector
	g := &Incast{
		Net: net, Client: 0, Servers: []pkt.NodeID{1, 2},
		Fanout: 8, QuerySize: 80_000, Interval: 10 * sim.Millisecond,
		ECN: true, Collector: &col, LinkBps: 10e9, OneWayBase: 4 * sim.Microsecond,
	}
	g.Start(0, 0) // one query
	net.Eng.RunUntil(50 * sim.Millisecond)
	if g.Done() != 1 {
		t.Fatalf("query with cycled fanout did not complete: %d", g.Done())
	}
}

func TestAllToAllRound(t *testing.T) {
	net := smallStar(4)
	var col metrics.Collector
	a := &AllToAll{
		Net: net, Hosts: []pkt.NodeID{0, 1, 2, 3},
		FlowSize: 50_000, Load: 0.5, LinkBps: 10e9,
		ECN: true, Collector: &col, OneWayBase: 4 * sim.Microsecond,
	}
	a.Start(0, 0) // exactly one round
	net.Eng.RunUntil(50 * sim.Millisecond)
	if a.Rounds() != 1 {
		t.Fatalf("rounds = %d", a.Rounds())
	}
	if col.Count() != 12 { // 4×3 pairs
		t.Fatalf("completed %d flows, want 12", col.Count())
	}
}

func TestDoubleBinaryTreeProperties(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 2
		a, b := DoubleBinaryTree(n)
		// Each tree must span all nodes: n-1 edges, every non-root
		// appears exactly once as a child.
		check := func(edges []TreeEdge) bool {
			if len(edges) != n-1 {
				return false
			}
			childSeen := make([]bool, n)
			for _, e := range edges {
				if e.Parent < 0 || e.Parent >= n || e.Child < 0 || e.Child >= n {
					return false
				}
				if e.Parent == e.Child || childSeen[e.Child] {
					return false
				}
				childSeen[e.Child] = true
			}
			return true
		}
		return check(a) && check(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBinaryTreeRootsDiffer(t *testing.T) {
	a, b := DoubleBinaryTree(8)
	rootOf := func(edges []TreeEdge) int {
		child := map[int]bool{}
		for _, e := range edges {
			child[e.Child] = true
		}
		for i := 0; i < 8; i++ {
			if !child[i] {
				return i
			}
		}
		return -1
	}
	if rootOf(a) == rootOf(b) {
		t.Fatal("the two trees share a root; load not spread")
	}
}

func TestAllReduceRound(t *testing.T) {
	net := smallStar(4)
	var col metrics.Collector
	a := &AllReduce{
		Net: net, Hosts: []pkt.NodeID{0, 1, 2, 3},
		FlowSize: 50_000, Load: 0.5, LinkBps: 10e9,
		ECN: true, Collector: &col, OneWayBase: 4 * sim.Microsecond,
	}
	a.Start(0, 0) // one round
	net.Eng.RunUntil(50 * sim.Millisecond)
	// Two trees × 3 edges × 2 directions = 12 flows, minus any
	// self-flows (none for n=4 heap trees).
	if col.Count() != 12 {
		t.Fatalf("completed %d flows, want 12", col.Count())
	}
}

func TestIncastRandomClientRotates(t *testing.T) {
	net := smallStar(5)
	var col metrics.Collector
	g := &Incast{
		Net: net, Servers: []pkt.NodeID{0, 1, 2, 3, 4}, RandomClient: true,
		Fanout: 3, QuerySize: 60_000, Interval: 5 * sim.Millisecond,
		ECN: true, Collector: &col, LinkBps: 10e9, OneWayBase: 4 * sim.Microsecond,
	}
	g.Start(0, 40*sim.Millisecond)
	net.Eng.RunUntil(200 * sim.Millisecond)
	if g.Done() != g.Queries() || g.Done() < 8 {
		t.Fatalf("done %d of %d queries", g.Done(), g.Queries())
	}
	// Every host must have received traffic eventually (clients rotate):
	// check via per-switch port transmit counters.
	st := net.Switches[0].Stats()
	if st.TxPackets == 0 {
		t.Fatal("no traffic")
	}
}
