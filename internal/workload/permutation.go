package workload

import (
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/transport"
)

// Permutation generates the classic permutation-traffic stress pattern:
// every host sends FlowSize bytes to the host Stride positions ahead
// (mod N), in rounds spaced so the average per-host offered load matches
// Load. Unlike the incast and background patterns there is no fan-in at
// all — each destination receives exactly one flow per round — so
// permutation isolates fabric/scheduling effects from admission-control
// effects, and at loads near 1.0 it keeps every access link saturated.
type Permutation struct {
	Net      *netsim.Network
	Hosts    []pkt.NodeID
	FlowSize int64
	Load     float64
	LinkBps  float64
	// Stride is the fixed src→dst offset; 0 defaults to 1. RotateStride
	// advances the stride every round (1, 2, ... N−1, 1, ...) so the run
	// exercises every permutation class instead of one fixed matching.
	Stride       int
	RotateStride bool

	Priority int
	ECN      bool
	NewCC    func(mss, segs int) transport.CC
	Opts     transport.Options

	Collector  *metrics.Collector
	OneWayBase sim.Duration

	stopped bool
	rounds  int64
}

// RoundInterval returns the spacing between round starts that hits the
// target load: each host sends exactly FlowSize bytes per round.
func (g *Permutation) RoundInterval() sim.Duration {
	perHost := float64(g.FlowSize) * 8
	return sim.Duration(perHost / (g.Load * g.LinkBps) * float64(sim.Second))
}

// Start launches rounds in [from, until] — until is inclusive:
// Start(t, t) launches exactly one round.
func (g *Permutation) Start(from, until sim.Time) {
	if g.Load <= 0 || len(g.Hosts) < 2 {
		panic("workload: Permutation needs Load > 0 and >= 2 hosts")
	}
	interval := g.RoundInterval()
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until || g.stopped {
			return
		}
		g.Net.Eng.At(at, func() {
			g.round()
			schedule(at + interval)
		})
	}
	schedule(from)
}

// Stop halts new rounds.
func (g *Permutation) Stop() { g.stopped = true }

// Rounds returns the number of rounds launched.
func (g *Permutation) Rounds() int64 { return g.rounds }

func (g *Permutation) stride() int {
	n := len(g.Hosts)
	s := g.Stride
	if s <= 0 {
		s = 1
	}
	if g.RotateStride {
		s = int(g.rounds-1)%(n-1) + 1
	}
	return s % n
}

func (g *Permutation) round() {
	g.rounds++
	now := g.Net.Eng.Now()
	n := len(g.Hosts)
	stride := g.stride()
	if stride == 0 {
		stride = 1
	}
	ideal := IdealFCT(g.FlowSize, g.LinkBps, g.OneWayBase)
	for i, src := range g.Hosts {
		dst := g.Hosts[(i+stride)%n]
		if src == dst {
			continue
		}
		size := g.FlowSize
		g.Net.StartFlow(now, src, dst, size, netsim.FlowOptions{
			Priority:  g.Priority,
			ECN:       g.ECN,
			NewCC:     g.NewCC,
			Transport: g.Opts,
			OnComplete: func(fct sim.Duration) {
				if g.Collector != nil {
					g.Collector.Add(size, fct, ideal)
				}
			},
		})
	}
}
